"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()


class TestRunUntil:
    def test_until_bounds_execution(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_until_advances_clock_when_heap_drains(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_stop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]


class TestPeriodic:
    def test_periodic_fires_until_false(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            return count[0] < 3

        sim.schedule_periodic(1.0, tick)
        sim.run(until=10.0)
        assert count[0] == 3

    def test_periodic_cancel(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            return True

        handle = sim.schedule_periodic(1.0, tick)
        sim.schedule(2.5, handle.cancel)
        sim.run(until=10.0)
        assert count[0] == 2

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda: True)

    def test_jittered_period_stays_within_band(self):
        import random

        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            return len(times) < 20

        sim.schedule_periodic(1.0, tick, jitter_rng=random.Random(0))
        sim.run(until=100.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(0.89 <= g <= 1.11 for g in gaps)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()
