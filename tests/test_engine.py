"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestScheduleArgs:
    """Positional-argument scheduling (the closure-free fast path)."""

    def test_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, got.append, "x")
        sim.schedule_at(2.0, lambda a, b: got.append((a, b)), 1, 2)
        sim.run()
        assert got == ["x", (1, 2)]

    def test_cancelled_args_released(self):
        sim = Simulator()
        timer = sim.schedule(1.0, print, "never")
        timer.cancel()
        assert timer._args == ()
        sim.run()


class TestEventsProcessed:
    def test_counts_executed_callbacks_only(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()


class TestRunUntil:
    def test_until_bounds_execution(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_until_advances_clock_when_heap_drains(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_stop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]


class TestPeriodic:
    def test_periodic_fires_until_false(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            return count[0] < 3

        sim.schedule_periodic(1.0, tick)
        sim.run(until=10.0)
        assert count[0] == 3

    def test_periodic_cancel(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            return True

        handle = sim.schedule_periodic(1.0, tick)
        sim.schedule(2.5, handle.cancel)
        sim.run(until=10.0)
        assert count[0] == 2

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda: True)

    def test_periodic_handles_share_one_class(self):
        # The handle class is defined at module level, not per call.
        sim = Simulator()
        a = sim.schedule_periodic(1.0, lambda: True)
        b = sim.schedule_periodic(1.0, lambda: True)
        assert type(a) is type(b)
        a.cancel()
        b.cancel()

    def test_jittered_period_stays_within_band(self):
        import random

        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            return len(times) < 20

        sim.schedule_periodic(1.0, tick, jitter_rng=random.Random(0))
        sim.run(until=100.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(0.89 <= g <= 1.11 for g in gaps)


class TestHeapCompaction:
    """Cancelled entries must not accumulate (the transport reschedules
    transmission-complete timers on every rate change, so long runs used
    to grow the heap unboundedly)."""

    def test_cancel_heavy_heap_is_compacted(self):
        sim = Simulator()
        timers = [sim.schedule(1000.0 + i, lambda: None) for i in range(1000)]
        for timer in timers[:900]:
            timer.cancel()
        # >50% of the heap was cancelled; compaction kicked in and only
        # live entries (plus at most a sub-majority of cancelled ones)
        # remain.
        assert sim.pending_events < 250
        assert sim.pending_events >= 100

    def test_reschedule_loop_keeps_heap_bounded(self):
        # The transport's pattern: cancel + reschedule, thousands of
        # times, with a far-future deadline that is never reached.
        sim = Simulator()
        live = []
        for i in range(10_000):
            live.append(sim.schedule(500.0 + (i % 7), lambda: None))
            if len(live) > 50:
                live.pop(0).cancel()
        assert sim.pending_events < 200

    def test_compaction_preserves_order_and_results(self):
        # The same schedule/cancel pattern with and without compaction
        # pressure must fire surviving callbacks in the same order.
        def run(cancel_fraction):
            sim = Simulator()
            fired = []
            timers = []
            for i in range(300):
                timers.append(
                    sim.schedule(1.0 + (i % 13), lambda i=i: fired.append(i))
                )
            for i, timer in enumerate(timers):
                if i % 3 < cancel_fraction:
                    timer.cancel()
            sim.run()
            return fired

        expected = [
            i for i in range(300) if i % 3 >= 2
        ]
        fired = run(2)
        assert sorted(fired) == expected
        # Time order with FIFO tie-break: stable sort by (time, seq).
        assert fired == sorted(fired, key=lambda i: (1.0 + (i % 13), i))

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        a = sim.schedule(5.0, lambda: None)
        a.cancel()
        assert sim.pending_events == 1  # lazy entry stays below the floor

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        fired = []
        timers = [
            sim.schedule(1.0 + i * 0.001, lambda i=i: fired.append(i))
            for i in range(100)
        ]
        sim.run()
        for timer in timers:
            timer.cancel()  # late cancels of already-fired timers
        assert sim._cancelled_count == 0
        assert len(fired) == 100


class TestTimerPooling:
    """The zero-allocation event core: retired timers are recycled, but
    never while any caller still holds the handle."""

    def test_fired_timer_recycled_when_unreferenced(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)  # handles discarded
        sim.run()
        assert sim.pool_size > 0
        allocated_before = sim.timers_allocated
        sim.schedule(1.0, lambda: None)
        assert sim.timers_allocated == allocated_before  # pool hit
        assert sim.timers_recycled >= 1

    def test_held_handle_never_observes_recycled_event(self):
        sim = Simulator()
        fired = []
        held = sim.schedule(1.0, lambda: fired.append("held"))
        sim.run()
        assert fired == ["held"]
        # The held timer must not be in the pool: a later schedule must
        # arm a *different* object.
        later = sim.schedule(1.0, lambda: fired.append("later"))
        assert later is not held
        # Late-cancelling the stale handle is a no-op for the new event.
        held.cancel()
        sim.run()
        assert fired == ["held", "later"]

    def test_cancelled_and_discarded_timer_rejoins_pool(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()  # handle discarded
        sim.run()
        assert sim.pool_size >= 1

    def test_held_cancelled_timer_not_recycled(self):
        sim = Simulator()
        held = sim.schedule(1.0, lambda: None)
        held.cancel()
        sim.run()
        replacement = sim.schedule(1.0, lambda: None)
        assert replacement is not held

    def test_pool_survives_heavy_reschedule_loop(self):
        # The transport's cancel/reschedule pattern must reach a steady
        # state where (almost) no fresh Timer objects are constructed.
        sim = Simulator()
        live = [None]

        def hop():
            if live[0] is not None:
                live[0].cancel()
            live[0] = sim.schedule(2.0, lambda: None)
            return sim.now < 50.0

        sim.schedule_periodic(0.5, hop)
        sim.run(until=100.0)
        assert sim.timers_recycled > sim.timers_allocated


class TestScheduleAtUntil:
    def test_event_at_exactly_until_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("at"))
        sim.schedule(2.0000001, lambda: fired.append("after"))
        sim.run(until=2.0)
        assert fired == ["at"]
        assert sim.now == 2.0

    def test_schedule_at_now_outside_run_executes(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule_at(sim.now, lambda: fired.append(1))
        sim.run()
        assert fired == [1]


class TestSameInstantDrain:
    """Zero-delay events issued while running take the drain queue, in
    exactly the (time, sequence) order the heap would have produced."""

    def test_zero_delay_runs_at_same_timestamp_in_fifo_order(self):
        sim = Simulator()
        order = []

        def first():
            order.append(("first", sim.now))
            sim.schedule(0.0, lambda: order.append(("zero-a", sim.now)))
            sim.schedule(0.0, lambda: order.append(("zero-b", sim.now)))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append(("peer", sim.now)))
        sim.run()
        # The heap-resident peer event (smaller sequence) runs before
        # the drain-queue entries created at the same instant.
        assert order == [
            ("first", 1.0),
            ("peer", 1.0),
            ("zero-a", 1.0),
            ("zero-b", 1.0),
        ]
        assert sim.same_time_batched == 2

    def test_absorbed_tiny_delay_keeps_schedule_order(self):
        # A nonzero delay swallowed by float addition (now + d == now)
        # must take the drain path too: routing it through the heap
        # would give it heap priority over *earlier* zero-delay events
        # at the same instant, inverting (time, sequence) order.
        sim = Simulator()
        order = []

        def outer():
            sim.schedule(0.0, lambda: order.append("zero"))
            tiny = 1e-13
            assert sim.now + tiny == sim.now  # absorbed at this scale
            sim.schedule(tiny, lambda: order.append("tiny"))

        sim.schedule(4096.0, outer)
        sim.run()
        assert order == ["zero", "tiny"]

    def test_drain_queue_timer_cancellable(self):
        sim = Simulator()
        fired = []

        def outer():
            keep = sim.schedule(0.0, lambda: fired.append("keep"))
            drop = sim.schedule(0.0, lambda: fired.append("drop"))
            drop.cancel()
            assert keep is not None

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["keep"]

    def test_stop_inside_drain_halts_remaining_entries(self):
        sim = Simulator()
        fired = []

        def outer():
            sim.schedule(0.0, lambda: (fired.append("a"), sim.stop()))
            sim.schedule(0.0, lambda: fired.append("b"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["a"]
        # The unprocessed drain entry survives for the next run.
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["a", "b"]


class TestScheduleBatch:
    def test_batch_runs_in_list_order_at_one_instant(self):
        sim = Simulator()
        seen = []
        sim.schedule_batch(
            2.0,
            [
                (seen.append, "a"),
                (seen.append, "b"),
                (lambda: seen.append(sim.now),),
            ],
        )
        sim.run()
        assert seen == ["a", "b", 2.0]
        # One heap entry, three executed callbacks.
        assert sim.events_processed == 3

    def test_batch_cancel_cancels_all(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule_batch(1.0, [(seen.append, 1), (seen.append, 2)])
        timer.cancel()
        sim.run()
        assert seen == []

    def test_stop_from_inside_batch_halts_remainder(self):
        sim = Simulator()
        seen = []
        sim.schedule_batch(
            1.0,
            [(seen.append, 1), (sim.stop,), (seen.append, 2)],
        )
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run()
        assert seen == [1]

    def test_batch_rejects_non_callable(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.schedule_batch(1.0, [("not-callable",)])


class TestCancelledCountExact:
    """``_cancelled_count`` equals the number of cancelled entries in
    the heap at all times — including when cancels land between a
    compaction and the pop of surviving entries, the drift scenario the
    old clamped decrement could mask."""

    @staticmethod
    def _true_count(sim):
        return sum(1 for e in sim._heap if e[2].cancelled)

    def test_count_exact_with_compaction_during_run_until(self):
        sim = Simulator()
        mismatches = []
        live = []

        def probe():
            if sim._cancelled_count != self._true_count(sim):
                mismatches.append(
                    (sim.now, sim._cancelled_count, self._true_count(sim))
                )

        def churn():
            # Keep the heap above the compaction floor, then cancel in
            # bursts so compaction triggers *while running*; fresh
            # cancels keep landing after each compaction and before the
            # surviving entries pop.
            for _ in range(40):
                live.append(sim.schedule(5.0, lambda: None))
            while len(live) > 60:
                live.pop(0).cancel()
            probe()
            return sim.now < 30.0

        sim.schedule_periodic(1.0, churn)
        for upto in (7.0, 13.0, 50.0):
            sim.run(until=upto)
            probe()
        assert sim.heap_compactions > 0, "scenario must exercise compaction"
        assert mismatches == []

    def test_cancel_after_fire_does_not_count(self):
        sim = Simulator()
        timers = [sim.schedule(1.0, lambda: None) for _ in range(100)]
        sim.run()
        for timer in timers:
            timer.cancel()
        assert sim._cancelled_count == 0


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()
