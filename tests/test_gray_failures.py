"""The gray-failure engine: fail-slow nodes, flaky links, message
adversity, and the adaptive peer quarantine.

The contract under test: gray faults are *partial* — the victim stays
up and answers every message — so the overlay can only respond through
its own measurements (EWMA goodput, detector timeouts, checksum
verification).  Every gray scenario at zero intensity installs nothing
at all (no RNG stream, no events) and must reproduce the static
baseline bit for bit, perf counters included; the recorded crash/chaos
golden cells never arm gray detection, so the quarantine machinery
cannot perturb them.
"""

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.faults import FaultInjector, LivenessWatchdog
from repro.harness.registry import SCENARIOS
from repro.harness.systems import bullet_prime_factory
from repro.scenarios.failures import Adversarial, FailSlow, Flaky, GrayChaos
from repro.sim.topology import mesh_topology
from repro.sim.transport import MessageAdversity

N = 8
NB = 24


def _run(scenario, seed=3, nodes=N, blocks=NB, factory=None, **kwargs):
    if factory is None:
        factory = bullet_prime_factory(num_blocks=blocks, seed=seed)
    return run_experiment(
        mesh_topology(nodes, seed=seed),
        factory,
        blocks,
        scenario=scenario,
        max_time=900.0,
        seed=seed,
        **kwargs,
    )


class TestZeroIntensityEquivalence:
    """Satellite property: a gray scenario dialed to zero is the
    ``none`` scenario, bit for bit — the full summary including every
    perf counter, the strictest comparison the harness offers."""

    @pytest.mark.parametrize(
        "scenario",
        [
            FailSlow(fraction=0.0),
            Flaky(loss=0.0),
            Flaky(fraction=0.0),
            Adversarial(duplicate=0.0, reorder=0.0, corrupt=0.0),
            GrayChaos(rate=0.0),
        ],
        ids=[
            "fail_slow-fraction0",
            "flaky-loss0",
            "flaky-fraction0",
            "adversarial-all0",
            "gray_chaos-rate0",
        ],
    )
    def test_zero_intensity_is_bit_identical_to_none(self, scenario):
        quiet = _run(scenario).summary()
        static = _run(SCENARIOS.build("none")).summary()
        assert quiet == static


class TestQuarantineLifecycle:
    def test_fail_slow_straggler_quarantined_and_reprobed(self):
        # Degrade victims hard and long enough that their EWMA goodput
        # sinks below the straggler threshold while requests are
        # outstanding: peers must quarantine them (fast backoff), and
        # after the hold expires re-probe them (slow recovery) — and
        # the run must still finish.  Uses the stock Bullet' config:
        # its block sizing makes the run long enough for the EWMA rule
        # to engage and a quarantine hold to expire mid-run.
        result = _run(
            FailSlow(),
            factory=bullet_prime_factory(),
            check_invariants=True,
        )
        perf = result.summary()["perf"]
        assert result.finished
        assert perf["gray_quarantines"] >= 1
        assert perf["gray_reprobes"] >= 1
        assert perf["watchdog_fired"] == 0
        assert result.invariants.ok, result.invariants.violations

    def test_corrupt_blocks_detected_and_rerequested(self):
        # Corruption-only adversity: every corrupted block must be
        # caught by the checksum (never ingested), counted, and
        # re-requested — the download still completes in full.
        result = _run(
            Adversarial(duplicate=0.0, reorder=0.0, corrupt=0.05),
            check_invariants=True,
        )
        perf = result.summary()["perf"]
        assert result.finished
        assert perf["gray_corrupt_detected"] >= 1
        assert perf["fd_rerequests"] >= 1
        assert result.invariants.ok, result.invariants.violations

    def test_gray_chaos_full_spectrum_run_is_clean(self):
        result = _run(GrayChaos(), check_invariants=True)
        perf = result.summary()["perf"]
        assert result.finished
        assert perf["gray_corrupt_detected"] >= 1
        assert perf["gray_dup_dropped"] >= 1
        assert perf["gray_reordered"] >= 1
        assert perf["watchdog_fired"] == 0
        assert result.invariants.ok, result.invariants.violations


class TestInjectorActuators:
    def _injector(self):
        import repro.sim.engine as engine
        import repro.sim.tcp as tcp
        import repro.sim.transport as transport
        from repro.overlay.tree import build_random_tree

        sim = engine.Simulator()
        topology = mesh_topology(4, seed=1)
        flows = tcp.FlowNetwork(sim)
        network = transport.Network(sim, topology, flows)
        tree = build_random_tree(topology.nodes, root=0, fanout=4, seed=1)
        nodes = bullet_prime_factory(num_blocks=4, seed=1)(
            network, tree, 0, None
        )
        watchdog = LivenessWatchdog(
            sim, type("T", (), {"last_arrival_time": 0.0})()
        )
        return sim, topology, FaultInjector(
            sim, network, topology, nodes, None, 0, watchdog=watchdog
        )

    def test_degrade_and_restore_round_trip(self):
        sim, topology, injector = self._injector()
        link = topology.access_up[2]
        before = link.capacity
        assert injector.degrade_node(2, factor=0.25) is True
        assert link.capacity == pytest.approx(before * 0.25)
        assert injector.gray_armed
        # Double-degrade refused; restore is exact-inverse.
        assert injector.degrade_node(2) is False
        assert injector.restore_node(2) is True
        assert link.capacity == pytest.approx(before)
        assert injector.restore_node(2) is False

    def test_flake_window_overlays_and_heals(self):
        sim, topology, injector = self._injector()
        up = topology.access_up[2]
        down = topology.access_down[2]
        injector.flake_node(2, loss=0.5, duration=5.0, direction="both")
        assert up.loss_rate > 0.0 and down.loss_rate > 0.0
        sim.run(until=6.0)
        assert up.loss_rate == pytest.approx(0.0)
        assert down.loss_rate == pytest.approx(0.0)

    def test_source_is_untouchable(self):
        _sim, _topology, injector = self._injector()
        with pytest.raises(ValueError):
            injector.degrade_node(0)
        with pytest.raises(ValueError):
            injector.flake_node(0)

    def test_parameter_validation(self):
        _sim, _topology, injector = self._injector()
        with pytest.raises(ValueError):
            injector.degrade_node(2, factor=0.0)
        with pytest.raises(ValueError):
            injector.degrade_node(2, stretch=0.5)
        with pytest.raises(ValueError):
            injector.flake_node(2, loss=1.5)
        with pytest.raises(ValueError):
            injector.flake_node(2, direction="sideways")

    def test_adversity_single_instance_and_counter_carryover(self):
        import random

        sim, _topology, injector = self._injector()
        assert injector.arm_adversity(random.Random(1), duplicate=0.5) is True
        assert injector.arm_adversity(random.Random(2), duplicate=0.5) is False
        first = injector.adversity
        first.stats["dup_dropped"] = 7
        assert injector.disarm_adversity() is True
        assert injector.disarm_adversity() is False
        # Re-arm: a fresh process, but the counters carry forward.
        assert injector.arm_adversity(random.Random(3), corrupt=0.1) is True
        assert injector.adversity.stats["dup_dropped"] == 7


class TestScenarioConfigValidation:
    def test_fail_slow_bounds(self):
        with pytest.raises(ValueError):
            FailSlow(factor=0.0)
        with pytest.raises(ValueError):
            FailSlow(stretch=0.9)
        with pytest.raises(ValueError):
            FailSlow(fraction=1.5)
        with pytest.raises(ValueError):
            FailSlow(duration=0.0)

    def test_flaky_bounds(self):
        with pytest.raises(ValueError):
            Flaky(loss=1.5)
        with pytest.raises(ValueError):
            Flaky(window=0.0)
        with pytest.raises(ValueError):
            Flaky(direction="diagonal")

    def test_adversarial_bounds(self):
        with pytest.raises(ValueError):
            Adversarial(duplicate=1.0)
        with pytest.raises(ValueError):
            Adversarial(reorder_window=0.0)
        with pytest.raises(ValueError):
            Adversarial(start=5.0, stop=5.0)

    def test_gray_chaos_bounds(self):
        with pytest.raises(ValueError):
            GrayChaos(degrade_factor=0.0)
        with pytest.raises(ValueError):
            GrayChaos(flake_loss=0.0)
        with pytest.raises(ValueError):
            GrayChaos(corrupt=1.0)
        with pytest.raises(ValueError):
            GrayChaos(degrade_weight=-1.0)

    def test_message_adversity_rate_validation(self):
        import random

        with pytest.raises(ValueError):
            MessageAdversity(None, random.Random(1), duplicate=1.0)
        with pytest.raises(ValueError):
            MessageAdversity(None, random.Random(1), reorder_window=0.0)
