"""Tests for the deterministic perf-counter regression gate."""

import json

import pytest

from repro.__main__ import main
from repro.harness.perf_gate import (
    GATE_COUNTERS,
    baseline_from_ledger,
    check_ledger,
    update_baseline,
)


def _ledger(**overrides):
    doc = {
        "benchmark": "scenario_sweep",
        "nodes": 10,
        "blocks": 48,
        "cells": 10,
        "scenarios": ["churn", "none"],
        "seeds": [2],
        "serial_seconds": 0.5,
        "perf_totals": {
            "events_processed": 1000,
            "reallocations": 200,
            "fill_rounds": 300,
            "timers_recycled": 900,
            "timers_allocated": 100,
        },
    }
    doc.update(overrides)
    return doc


class TestCheckLedger:
    def test_identical_counters_pass(self):
        ledger = _ledger()
        baseline = baseline_from_ledger(ledger)
        assert check_ledger(ledger, baseline) == []

    def test_counter_drift_fails_with_delta(self):
        baseline = baseline_from_ledger(_ledger())
        drifted = _ledger()
        drifted["perf_totals"]["events_processed"] = 1100
        problems = check_ledger(drifted, baseline)
        assert len(problems) == 1
        assert "events_processed" in problems[0]
        assert "+10.00%" in problems[0]

    def test_wall_clock_fields_are_not_gated(self):
        baseline = baseline_from_ledger(_ledger())
        noisy = _ledger(serial_seconds=99.0)
        noisy["perf_totals"]["timers_allocated"] = 12345  # ungated counter
        assert check_ledger(noisy, baseline) == []

    def test_scale_mismatch_reported_before_counters(self):
        baseline = baseline_from_ledger(_ledger())
        other_scale = _ledger(nodes=50)
        other_scale["perf_totals"]["events_processed"] = 999999
        problems = check_ledger(other_scale, baseline)
        expected = "scale mismatch: nodes is 50, baseline was recorded at 10"
        assert problems == [expected]

    def test_missing_counter_is_drift(self):
        baseline = baseline_from_ledger(_ledger())
        broken = _ledger()
        del broken["perf_totals"]["fill_rounds"]
        problems = check_ledger(broken, baseline)
        assert any("fill_rounds" in p for p in problems)

    def test_truncated_baseline_fails_instead_of_passing_vacuously(self):
        # Regression: the gate checks the union of GATE_COUNTERS and the
        # recorded counters, so a hand-truncated baseline (or a grown
        # GATE_COUNTERS) cannot silently stop gating a counter.
        baseline = baseline_from_ledger(_ledger())
        del baseline["counters"]["timers_recycled"]
        problems = check_ledger(_ledger(), baseline)
        assert any("timers_recycled" in p and "missing" in p for p in problems)

    def test_baseline_without_counters_key_fails_cleanly(self, tmp_path):
        ledger_path = self._tmp_json(tmp_path, "ledger.json", _ledger())
        baseline = baseline_from_ledger(_ledger())
        del baseline["counters"]
        baseline_path = self._tmp_json(tmp_path, "baseline.json", baseline)
        code = main(
            [
                "perf-gate",
                "--ledger",
                str(ledger_path),
                "--baseline",
                str(baseline_path),
            ]
        )
        assert code == 1  # drift messages, not a traceback

    @staticmethod
    def _tmp_json(tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_baseline_requires_all_gated_counters(self):
        bad = _ledger()
        del bad["perf_totals"]["reallocations"]
        with pytest.raises(ValueError, match="reallocations"):
            baseline_from_ledger(bad)

    def test_baseline_requires_all_scale_fields(self):
        # A trimmed ledger must fail with a clean ValueError (the CLI
        # maps it to exit 2), not a KeyError traceback.
        bad = _ledger()
        del bad["nodes"]
        with pytest.raises(ValueError, match="scale fields.*nodes"):
            baseline_from_ledger(bad)

    def test_gate_counters_are_the_issue_contract(self):
        assert set(GATE_COUNTERS) == {
            "events_processed",
            "reallocations",
            "fill_rounds",
            "timers_recycled",
        }


class TestPerfGateCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_update_then_check_passes(self, tmp_path, capsys):
        ledger = self._write(tmp_path, "ledger.json", _ledger())
        baseline = tmp_path / "baseline.json"
        args = ["perf-gate", "--ledger", str(ledger), "--baseline", str(baseline)]
        assert main(args + ["--update"]) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "perf-counter gate ok" in out
        assert "events_processed=1000" in out

    def test_drift_fails_and_names_the_counter(self, tmp_path, capsys):
        ledger_path = self._write(tmp_path, "ledger.json", _ledger())
        baseline = tmp_path / "baseline.json"
        base_args = [
            "perf-gate",
            "--ledger",
            str(ledger_path),
            "--baseline",
            str(baseline),
        ]
        assert main(base_args + ["--update"]) == 0
        drifted = _ledger()
        drifted["perf_totals"]["fill_rounds"] += 1
        drifted_path = self._write(tmp_path, "drifted.json", drifted)
        code = main(
            [
                "perf-gate",
                "--ledger",
                str(drifted_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "fill_rounds" in err
        assert "--update" in err  # tells the PR author how to accept

    def test_missing_files_exit_2(self, tmp_path, capsys):
        code = main(
            [
                "perf-gate",
                "--ledger",
                "/no/such.json",
                "--baseline",
                str(tmp_path / "b.json"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_committed_baseline_matches_gated_counter_set(self):
        import pathlib

        data_dir = pathlib.Path(__file__).parent / "data"
        baseline_path = data_dir / "perf_counters_baseline.json"
        committed = json.loads(baseline_path.read_text())
        assert set(committed["counters"]) == set(GATE_COUNTERS)
        assert committed["scale"]["nodes"] == 10
        assert committed["scale"]["blocks"] == 48
        # The baseline pins the scenario catalogue it was recorded over;
        # registering a new scenario must re-record the baseline.
        from repro.harness.registry import SCENARIOS

        assert committed["scale"]["scenarios"] == SCENARIOS.names()


def test_update_baseline_writes_sorted_json(tmp_path):
    path = tmp_path / "b.json"
    update_baseline(_ledger(), path)
    text = path.read_text()
    assert text.endswith("\n")
    doc = json.loads(text)
    assert doc == baseline_from_ledger(_ledger())
