"""Incremental allocation must be bit-identical to full recomputation.

The component-scoped allocator's contract (see the ``repro.sim.tcp``
module docstring) is that skipping clean components changes *nothing*:
for any sequence of activations, deactivations, and capacity changes,
every flow's rate — and the event sequence driven by rate-change
callbacks — matches a :class:`FlowNetwork` that recomputes every
component on every pass.  These tests drive both allocator modes with
randomized operation scripts on randomized topologies and compare every
flow rate for exact (bit-level) equality at every checkpoint.
"""

import random

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.registry import SCENARIOS, SYSTEMS
from repro.sim.engine import Simulator
from repro.sim.links import Link
from repro.sim.tcp import FlowNetwork
from repro.sim.topology import mesh_topology


def _build_world(seed, incremental, num_links=12, num_flows=24):
    """One (sim, network, links, flows) universe; two calls with the same
    seed build identical twins (separate Link/Flow objects)."""
    rng = random.Random(seed)
    sim = Simulator()
    net = FlowNetwork(sim, reallocation_interval=0.01, incremental=incremental)
    links = [
        Link(
            f"l{i}",
            capacity=rng.uniform(50_000, 2_000_000),
            delay=rng.uniform(0.001, 0.2),
            loss_rate=rng.choice([0.0, rng.uniform(0.0, 0.05)]),
        )
        for i in range(num_links)
    ]
    flows = []
    for i in range(num_flows):
        path = rng.sample(links, rng.randint(1, 3))
        flows.append(net.new_flow(f"f{i}", path))
    return sim, net, links, flows


def _random_script(seed, num_links, num_flows, num_ops=120, horizon=30.0):
    """Timestamped operations referring to links/flows by index, so the
    same script can drive both twin universes."""
    rng = random.Random(seed * 7919 + 13)
    ops = []
    for _ in range(num_ops):
        t = rng.uniform(0.0, horizon)
        kind = rng.choice(["activate", "deactivate", "capacity", "scale"])
        if kind == "activate":
            ops.append((t, "activate", rng.randrange(num_flows)))
        elif kind == "deactivate":
            ops.append((t, "deactivate", rng.randrange(num_flows)))
        elif kind == "capacity":
            ops.append(
                (t, "capacity", rng.randrange(num_links),
                 rng.uniform(20_000, 3_000_000))
            )
        else:
            ops.append(
                (t, "scale", rng.randrange(num_links),
                 rng.choice([0.25, 0.5, 2.0, 4.0]))
            )
    ops.sort(key=lambda op: op[0])
    return ops


def _install(sim, net, links, flows, ops):
    for op in ops:
        if op[1] == "activate":
            sim.schedule_at(op[0], net.activate, flows[op[2]])
        elif op[1] == "deactivate":
            sim.schedule_at(op[0], net.deactivate, flows[op[2]])
        elif op[1] == "capacity":
            def set_cap(link=links[op[2]], value=op[3]):
                link.capacity = value
            sim.schedule_at(op[0], set_cap)
        else:
            def scale(link=links[op[2]], factor=op[3]):
                link.scale_capacity(factor)
            sim.schedule_at(op[0], scale)


@pytest.mark.parametrize("seed", range(8))
def test_incremental_matches_full_on_random_scripts(seed):
    sim_i, net_i, links_i, flows_i = _build_world(seed, incremental=True)
    sim_f, net_f, links_f, flows_f = _build_world(seed, incremental=False)
    ops = _random_script(seed, len(links_i), len(flows_i))
    _install(sim_i, net_i, links_i, flows_i, ops)
    _install(sim_f, net_f, links_f, flows_f, ops)

    # Compare at many checkpoints, not just the end: transient rates are
    # part of the contract (they drive transmission-complete timing).
    for checkpoint in [2.0, 5.0, 9.0, 14.0, 21.0, 35.0, 60.0]:
        sim_i.run(until=checkpoint)
        sim_f.run(until=checkpoint)
        assert sim_i.now == sim_f.now
        for a, b in zip(flows_i, flows_f):
            assert a.rate == b.rate, (
                f"seed {seed} t={checkpoint}: {a.name} "
                f"incremental={a.rate!r} full={b.rate!r}"
            )
            assert a.active == b.active
            assert a.ramp_done == b.ramp_done
    # Both modes must have run the same coalesced passes and driven the
    # identical simulator event sequence.
    assert net_i.reallocations == net_f.reallocations
    assert sim_i.events_processed == sim_f.events_processed


def _matrix_run(scenario_name, flow_allocator, seed=3):
    return run_experiment(
        mesh_topology(8, seed=seed),
        SYSTEMS.get("bullet_prime").builder(num_blocks=24, seed=seed),
        24,
        scenario=SCENARIOS.build(scenario_name),
        max_time=900.0,
        seed=seed,
        flow_allocator=flow_allocator,
    )


@pytest.mark.parametrize("scenario_name", ["none", "churn", "oscillate"])
def test_summary_perf_counters_deterministic_and_equivalent(scenario_name):
    """The deterministic ``summary()["perf"]`` counters are part of the
    equivalence contract.

    Per mode, repeated runs must reproduce every counter bit for bit
    (they ride in summaries, so any wobble would break golden files).
    Across modes, the shared-work counters — simulator events processed
    and coalesced reallocation passes — must be *identical*: both modes
    execute the same schedule.  The component/flow-allocation counters
    legitimately differ (smaller in incremental mode — skipping that
    work is the whole optimization), so for those the contract is
    incremental <= full, never more work.
    """
    perf = {}
    for mode in ("incremental", "full"):
        first = _matrix_run(scenario_name, mode).summary()["perf"]
        second = _matrix_run(scenario_name, mode).summary()["perf"]
        assert first == second, f"{mode} perf counters must be deterministic"
        perf[mode] = first
    inc, full = perf["incremental"], perf["full"]
    assert set(inc) == set(full) == {
        "events_processed",
        "timers_allocated",
        "timers_recycled",
        "same_time_batched",
        "heap_compactions",
        "reallocations",
        "components_allocated",
        "flows_allocated",
        "fill_rounds",
        "path_refreshes",
        "max_component_size",
        "mean_component_size",
        # Failure-handling totals (PR 7): always present, zero when no
        # fault ever actuated, so fault-free summaries stay uniform.
        "fd_retries",
        "fd_suspects",
        "fd_rerequests",
        "fd_rejoins",
        "watchdog_fired",
        # Gray-failure totals (PR 9): same always-present contract.
        "gray_quarantines",
        "gray_reprobes",
        "gray_corrupt_detected",
        "gray_dup_dropped",
        "gray_reordered",
    }
    assert inc["events_processed"] == full["events_processed"]
    assert inc["reallocations"] == full["reallocations"]
    # Path refreshes are driven by link-condition changes, not by how
    # the allocator scopes its fills — identical across modes.
    assert inc["path_refreshes"] == full["path_refreshes"]
    assert inc["components_allocated"] <= full["components_allocated"]
    assert inc["flows_allocated"] <= full["flows_allocated"]
    assert inc["fill_rounds"] <= full["fill_rounds"]
    assert inc["max_component_size"] <= full["max_component_size"]
    # The event core pools timers: after warm-up nearly every event is
    # served from the free list, and both modes drive the same schedule.
    assert inc["timers_recycled"] > inc["timers_allocated"]


def test_incremental_skips_clean_components():
    """Two disjoint link groups: churning one must not re-fill the other."""
    sim = Simulator()
    net = FlowNetwork(sim, reallocation_interval=0.0, incremental=True)
    left = Link("left", capacity=1000.0)
    right = Link("right", capacity=1000.0)
    f_left = net.new_flow("fl", [left])
    f_right = net.new_flow("fr", [right])
    f_left.ramp_done = True  # isolate the dirtiness logic from ramping
    f_right.ramp_done = True
    net.activate(f_left)
    net.activate(f_right)
    sim.run(until=1.0)
    assert f_left.rate == 1000.0 and f_right.rate == 1000.0
    flows_allocated = net.flows_allocated

    # Churn only the left component.
    for i in range(5):
        sim.schedule(0.1 * i, left.scale_capacity, 0.5)
    sim.run(until=2.0)
    assert f_left.rate == 1000.0 * 0.5**5
    assert f_right.rate == 1000.0
    # Only the left flow was ever re-allocated.
    assert net.flows_allocated - flows_allocated == 5


def test_full_mode_refills_everything():
    sim = Simulator()
    net = FlowNetwork(sim, reallocation_interval=0.0, incremental=False)
    left = Link("left", capacity=1000.0)
    right = Link("right", capacity=1000.0)
    f_left = net.new_flow("fl", [left])
    f_right = net.new_flow("fr", [right])
    f_left.ramp_done = True
    f_right.ramp_done = True
    net.activate(f_left)
    net.activate(f_right)
    sim.run(until=1.0)
    baseline = net.flows_allocated
    sim.schedule(0.0, left.scale_capacity, 0.5)
    sim.run(until=2.0)
    # Both components re-filled even though only one changed.
    assert net.flows_allocated - baseline == 2
    assert f_right.rate == 1000.0
