"""Tests for the request strategies (paper section 3.3.2)."""

import collections

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import split_rng
from repro.core.request import REQUEST_STRATEGIES, AvailabilityView


def _view(strategy, seed=0, **kwargs):
    return AvailabilityView(strategy, split_rng(seed, "test"), **kwargs)


class TestBookkeeping:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            _view("fastest")

    def test_duplicate_sender_rejected(self):
        view = _view("random")
        view.add_sender("s1")
        with pytest.raises(KeyError):
            view.add_sender("s1")

    def test_learn_updates_rarity(self):
        view = _view("random")
        view.add_sender("s1")
        view.add_sender("s2")
        view.learn("s1", [1, 2])
        view.learn("s2", [2, 3])
        assert view.rarity == {1: 1, 2: 2, 3: 1}

    def test_learn_is_idempotent_per_sender(self):
        view = _view("random")
        view.add_sender("s1")
        view.learn("s1", [1])
        view.learn("s1", [1])
        assert view.rarity[1] == 1

    def test_remove_sender_decrements_rarity(self):
        view = _view("random")
        view.add_sender("s1")
        view.add_sender("s2")
        view.learn("s1", [1, 2])
        view.learn("s2", [2])
        view.remove_sender("s1")
        assert view.rarity == {2: 1}

    def test_candidate_count(self):
        view = _view("random")
        view.add_sender("s1")
        view.learn("s1", [1, 2, 3])
        have = {2}
        count = view.candidate_count("s1", lambda b: b not in have)
        assert count == 2


class TestPickSemantics:
    @pytest.mark.parametrize("strategy", REQUEST_STRATEGIES)
    def test_pick_exhausts_and_returns_none(self, strategy):
        view = _view(strategy)
        view.add_sender("s1")
        view.learn("s1", [1, 2, 3])
        picked = set()
        for _ in range(3):
            block = view.pick("s1", lambda b: True)
            assert block is not None
            picked.add(block)
        assert picked == {1, 2, 3}
        assert view.pick("s1", lambda b: True) is None

    @pytest.mark.parametrize("strategy", REQUEST_STRATEGIES)
    def test_pick_respects_useful(self, strategy):
        view = _view(strategy)
        view.add_sender("s1")
        view.learn("s1", list(range(10)))
        block = view.pick("s1", lambda b: b == 7)
        assert block == 7

    @pytest.mark.parametrize("strategy", REQUEST_STRATEGIES)
    def test_nothing_useful_returns_none(self, strategy):
        view = _view(strategy)
        view.add_sender("s1")
        view.learn("s1", [1, 2])
        assert view.pick("s1", lambda b: False) is None


class TestStrategyBehaviour:
    def test_first_preserves_discovery_order(self):
        view = _view("first")
        view.add_sender("s1")
        view.learn("s1", [5, 3, 8])
        view.learn("s1", [1])
        order = [view.pick("s1", lambda b: True) for _ in range(4)]
        assert order == [5, 3, 8, 1]

    def test_rarest_prefers_low_census(self):
        view = _view("rarest")
        for s in ("s1", "s2", "s3"):
            view.add_sender(s)
        view.learn("s1", [10, 20])
        view.learn("s2", [10])
        view.learn("s3", [10])
        # Block 20 is advertised by one sender; block 10 by three.
        assert view.pick("s1", lambda b: True) == 20

    def test_rarest_deterministic_tie_break(self):
        view = _view("rarest")
        view.add_sender("s1")
        view.learn("s1", [4, 2, 9])
        assert view.pick("s1", lambda b: True) == 4  # first-discovered tie

    def test_rarest_random_breaks_ties_randomly(self):
        choices = collections.Counter()
        for seed in range(60):
            view = _view("rarest_random", seed=seed)
            view.add_sender("s1")
            view.learn("s1", [1, 2, 3])
            choices[view.pick("s1", lambda b: True)] += 1
        assert len(choices) == 3  # every tie candidate gets chosen sometimes

    def test_random_spreads_choices(self):
        choices = collections.Counter()
        for seed in range(60):
            view = _view("random", seed=seed)
            view.add_sender("s1")
            view.learn("s1", list(range(6)))
            choices[view.pick("s1", lambda b: True)] += 1
        assert len(choices) >= 4

    def test_rarity_sample_bounds_scan_but_still_picks(self):
        view = _view("rarest_random", rarity_sample=8)
        view.add_sender("s1")
        view.learn("s1", list(range(1000)))
        picked = view.pick("s1", lambda b: True)
        assert picked in range(1000)
        # Unsampled candidates must survive for future picks.
        remaining = {view.pick("s1", lambda b: True) for _ in range(50)}
        assert len(remaining) == 50


class TestDiversityProperty:
    def test_rarest_random_spreads_better_than_first(self):
        """The motivating property: across many receivers choosing from
        the same availability, rarest-random yields more distinct early
        picks than first-encountered (block diversity, section 3.3.2)."""

        def early_picks(strategy):
            picks = []
            for seed in range(40):
                view = _view(strategy, seed=seed)
                view.add_sender("s")
                view.learn("s", list(range(50)))
                picks.append(view.pick("s", lambda b: True))
            return len(set(picks))

        assert early_picks("rarest_random") > early_picks("first")


@given(
    blocks=st.lists(
        st.integers(min_value=0, max_value=200), min_size=1, max_size=50, unique=True
    ),
    strategy=st.sampled_from(REQUEST_STRATEGIES),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_every_pick_is_valid_and_unique(blocks, strategy, seed):
    view = _view(strategy, seed=seed)
    view.add_sender("s")
    view.learn("s", blocks)
    picked = []
    while True:
        block = view.pick("s", lambda b: True)
        if block is None:
            break
        picked.append(block)
    assert sorted(picked) == sorted(blocks)
