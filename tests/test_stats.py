"""Tests for CDF and statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Cdf,
    OnlineStats,
    aggregate,
    confidence_interval,
    mean_stddev,
    paired_confidence_interval,
    paired_deltas,
    sign_counts,
    win_rate,
)


class TestConfidenceInterval:
    def test_single_sample_collapses(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_known_t_interval(self):
        # n=4, mean=5, sample stddev=2 -> half width 3.182 * 2 / 2.
        low, high = confidence_interval([3.0, 4.0, 6.0, 7.0])
        half = 3.182 * math.sqrt(10.0 / 3.0 / 4.0)
        assert low == pytest.approx(5.0 - half)
        assert high == pytest.approx(5.0 + half)

    def test_wider_confidence_is_wider(self):
        values = [1.0, 2.0, 4.0, 8.0, 9.0]
        for lo, hi in zip(
            (0.90, 0.95), (0.95, 0.99)
        ):
            llo, lhi = confidence_interval(values, confidence=lo)
            hlo, hhi = confidence_interval(values, confidence=hi)
            assert hlo < llo and lhi < hhi

    def test_large_samples_use_normal_quantile(self):
        values = [float(v % 7) for v in range(40)]
        low, high = confidence_interval(values)
        mean = sum(values) / len(values)
        assert low < mean < high

    def test_fallback_past_table_tracks_student_t(self):
        # df > 30 uses a Cornish-Fisher correction, not the bare normal
        # quantile: at n=32 the implied critical value must be ~t(31)
        # = 2.040 (z = 1.960 would under-cover by ~4%).
        values = [0.0, 10.0] * 16  # n=32, sample stddev independent of t
        low, high = confidence_interval(values)
        mean = sum(values) / len(values)
        s = math.sqrt(sum((v - mean) ** 2 for v in values) / 31)
        implied_t = (high - mean) / (s / math.sqrt(32))
        assert 2.03 < implied_t < 2.05
        # And the implied critical value shrinks monotonically with df.
        wider = confidence_interval(values[:30])
        assert (wider[1] - wider[0]) > (high - low)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="at least one"):
            confidence_interval([])
        with pytest.raises(ValueError, match="confidence"):
            confidence_interval([1.0, 2.0], confidence=0.5)

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=30))
    def test_interval_brackets_the_mean(self, values):
        low, high = confidence_interval(values)
        mean = sum(values) / len(values)
        assert low <= mean <= high


class TestAggregate:
    def test_fields_and_values(self):
        row = aggregate([4.0, 2.0, 6.0])
        assert row["n"] == 3
        assert row["mean"] == 4.0
        assert row["median"] == 4.0
        assert row["min"] == 2.0 and row["max"] == 6.0
        assert row["ci_low"] <= row["mean"] <= row["ci_high"]

    def test_order_insensitive_bit_identical(self):
        # Sweep cells complete in arbitrary order; aggregates must not
        # depend on it, down to the last float bit.
        values = [0.1, 0.7, 0.30000000000000004, 12.5, 3.3]
        assert aggregate(values) == aggregate(list(reversed(values)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate([])


class TestVarianceConventions:
    """The two stddev conventions are deliberate and must stay pinned
    to their documented users: population (ddof=0) for the peering
    rule, sample (ddof=1) everywhere cross-seed statistics are made."""

    VALUES = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]

    def test_mean_stddev_stays_population(self):
        _mean, std = mean_stddev(self.VALUES)
        assert std == pytest.approx(2.0)  # ddof=0

    def test_aggregate_reports_sample_stddev(self):
        row = aggregate(self.VALUES)
        n, mean = len(self.VALUES), row["mean"]
        sample = math.sqrt(
            sum((v - mean) ** 2 for v in self.VALUES) / (n - 1)
        )
        assert row["stddev"] == pytest.approx(sample)  # ddof=1, not 2.0
        assert row["stddev"] > 2.0

    def test_aggregate_stddev_matches_its_own_interval(self):
        # The stddev a report prints must be the one its CI was built
        # from: reconstruct the t-interval from the reported fields.
        row = aggregate(self.VALUES)
        half = 2.365 * row["stddev"] / math.sqrt(row["n"])  # t(7)
        assert row["ci_low"] == pytest.approx(row["mean"] - half)
        assert row["ci_high"] == pytest.approx(row["mean"] + half)


class TestPairedHelpers:
    def test_paired_deltas(self):
        assert paired_deltas([9.0, 13.0], [10.0, 12.0]) == [-1.0, 1.0]

    def test_paired_deltas_rejects_mismatch_and_empty(self):
        with pytest.raises(ValueError, match="equal length"):
            paired_deltas([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="at least one pair"):
            paired_deltas([], [])

    def test_paired_interval_is_interval_of_deltas(self):
        xs, ys = [9.0, 13.0, 10.0, 12.0], [10.0, 12.0, 11.0, 13.0]
        assert paired_confidence_interval(xs, ys) == confidence_interval(
            paired_deltas(xs, ys)
        )

    def test_paired_interval_tighter_than_unpaired_under_crn(self):
        # Common random numbers: a constant offset plus shared per-seed
        # noise.  Pairing cancels the noise entirely.
        noise = [0.0, 10.0, 20.0, 30.0]
        ys = [50.0 + n for n in noise]
        xs = [48.0 + n for n in noise]
        low, high = paired_confidence_interval(xs, ys)
        assert high - low == pytest.approx(0.0)
        xlow, xhigh = confidence_interval(xs)
        assert (xhigh - xlow) > 10.0

    def test_sign_counts(self):
        assert sign_counts([-1.0, 1.0, -1.0, -1.0]) == (3, 0, 1)
        assert sign_counts([0.0, 0.0]) == (0, 2, 0)
        assert sign_counts([]) == (0, 0, 0)

    def test_win_rate_half_tie_symmetry(self):
        deltas = [-1.0, 0.0, 2.0, -3.0]
        mirrored = [-d for d in deltas]
        assert win_rate(deltas) + win_rate(mirrored) == 1.0
        assert win_rate(deltas) == 0.625

    def test_win_rate_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one pair"):
            win_rate([])

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
        st.permutations(range(30)),
    )
    def test_win_rate_order_invariant(self, deltas, order):
        shuffled = [deltas[i] for i in order if i < len(deltas)]
        assert win_rate(shuffled) == win_rate(deltas)


class TestMeanStddev:
    def test_empty(self):
        assert mean_stddev([]) == (0.0, 0.0)

    def test_single_value(self):
        mean, std = mean_stddev([5.0])
        assert mean == 5.0
        assert std == 0.0

    def test_known_values(self):
        mean, std = mean_stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == 5.0
        assert std == pytest.approx(2.0)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_matches_batch(self):
        values = [1.0, 2.0, 3.5, -4.0, 10.0]
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        batch_mean, batch_std = mean_stddev(values)
        assert stats.mean == pytest.approx(batch_mean)
        assert stats.stddev == pytest.approx(batch_std)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_batch(self, values):
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        batch_mean, batch_std = mean_stddev(values)
        assert stats.mean == pytest.approx(batch_mean, abs=1e-6)
        assert stats.stddev == pytest.approx(batch_std, abs=1e-3)


class TestCdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_percentiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(1.0) == 100
        assert cdf.percentile(0.0) == 1
        assert cdf.minimum == 1
        assert cdf.maximum == 100

    def test_percentile_bounds_checked(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_fraction_below(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(4) == 1.0
        assert cdf.fraction_below(100) == 1.0

    def test_points_monotone(self):
        cdf = Cdf([3, 1, 2])
        points = list(cdf.points())
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_table(self):
        cdf = Cdf(range(10))
        table = cdf.table((0.5, 1.0))
        assert set(table) == {0.5, 1.0}

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100))
    def test_percentile_monotone(self, values):
        cdf = Cdf(values)
        fractions = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
        results = [cdf.percentile(f) for f in fractions]
        assert results == sorted(results)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100))
    def test_mean_between_min_max(self, values):
        cdf = Cdf(values)
        assert cdf.minimum <= cdf.mean <= cdf.maximum or math.isclose(
            cdf.minimum, cdf.maximum
        )
