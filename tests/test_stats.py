"""Tests for CDF and statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Cdf, OnlineStats, mean_stddev


class TestMeanStddev:
    def test_empty(self):
        assert mean_stddev([]) == (0.0, 0.0)

    def test_single_value(self):
        mean, std = mean_stddev([5.0])
        assert mean == 5.0
        assert std == 0.0

    def test_known_values(self):
        mean, std = mean_stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == 5.0
        assert std == pytest.approx(2.0)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_matches_batch(self):
        values = [1.0, 2.0, 3.5, -4.0, 10.0]
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        batch_mean, batch_std = mean_stddev(values)
        assert stats.mean == pytest.approx(batch_mean)
        assert stats.stddev == pytest.approx(batch_std)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_batch(self, values):
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        batch_mean, batch_std = mean_stddev(values)
        assert stats.mean == pytest.approx(batch_mean, abs=1e-6)
        assert stats.stddev == pytest.approx(batch_std, abs=1e-3)


class TestCdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_percentiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(1.0) == 100
        assert cdf.percentile(0.0) == 1
        assert cdf.minimum == 1
        assert cdf.maximum == 100

    def test_percentile_bounds_checked(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_fraction_below(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(4) == 1.0
        assert cdf.fraction_below(100) == 1.0

    def test_points_monotone(self):
        cdf = Cdf([3, 1, 2])
        points = list(cdf.points())
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_table(self):
        cdf = Cdf(range(10))
        table = cdf.table((0.5, 1.0))
        assert set(table) == {0.5, 1.0}

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100))
    def test_percentile_monotone(self, values):
        cdf = Cdf(values)
        fractions = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
        results = [cdf.percentile(f) for f in fractions]
        assert results == sorted(results)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100))
    def test_mean_between_min_max(self, values):
        cdf = Cdf(values)
        assert cdf.minimum <= cdf.mean <= cdf.maximum or math.isclose(
            cdf.minimum, cdf.maximum
        )
