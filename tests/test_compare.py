"""Tests for the paired-comparison analytics and the ledger trend gate.

The hand-computed fixture pins one league table byte for byte; the
hypothesis test pins the order-invariance property (shuffled record
order cannot move a single output byte); the chaos-group test exercises
the unfinished-cell policy against the real golden watchdog cell
(``bittorrent|chaos|1``).
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import stats
from repro.harness import compare
from repro.harness.sweep import (
    StoreView,
    SweepCell,
    SweepSpec,
    run_sweep,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_matrix_summaries.json"


def _record(system, seed, median, p90, worst, finished=True, scenario="none"):
    """A synthetic store record shaped exactly like run_cell's output."""
    cell = SweepCell(system, scenario, {}, "mesh", 8, 24, seed, 900.0)
    return {
        "key": cell.key(),
        "group": cell.group_key(),
        "seed": seed,
        "cell": cell.to_dict(),
        "summary": {
            "nodes": 8,
            "median": median,
            "p90": p90,
            "worst": worst,
            "finished": finished,
            "duplicates": 0,
            "control_bytes": 0,
            "perf": {},
        },
    }


def _fixture_records():
    """Three systems x four shared seeds under one condition.

    Hand-checkable paired deltas vs bullet_prime ([10, 12, 11, 13]):

    - bittorrent medians [9, 13, 10, 12] -> deltas [-1, +1, -1, -1]:
      mean -0.5, nearest-rank median -1, sample stddev 1.0,
      CI -0.5 -+ 3.182 * 1.0 / 2, win rate 3/4.
    - splitstream medians [8, 9, 10, 11] -> deltas [-2, -3, -1, -2]:
      mean -2.0, wins every seed.
    """
    records = []
    for seed, median in zip((0, 1, 2, 3), (10.0, 12.0, 11.0, 13.0)):
        records.append(_record("bullet_prime", seed, median, median + 2, median + 4))
    for seed, median in zip((0, 1, 2, 3), (9.0, 13.0, 10.0, 12.0)):
        records.append(_record("bittorrent", seed, median, median + 3, median + 6))
    for seed, median in zip((0, 1, 2, 3), (8.0, 9.0, 10.0, 11.0)):
        records.append(_record("splitstream", seed, median, median + 1, median + 2))
    return records


EXPECTED_LEAGUE_TABLE = """\
# Paired comparison vs `bullet_prime`

95% paired Student-t confidence intervals over per-seed deltas (competitor − baseline; negative = competitor faster).  Pairs where either run did not finish are excluded (unfinished-cell policy); `pairs` shows finished/common seed counts.

## none|mesh|n8|b24

baseline finished 4/4 seeds

| system | pairs | Δmedian | 95% CI | Δ% | win | Δp90 | Δworst |
| --- | --- | --- | --- | --- | --- | --- | --- |
| `splitstream` | 4/4 | -2.00 | [-3.30, -0.70] | -17.4% | 100% | -3.00 | -4.00 |
| `bittorrent` | 4/4 | -0.50 | [-2.09, +1.09] | -4.3% | 75% | +0.50 | +1.50 |"""


class TestPairedComparison:
    def test_league_table_markdown_byte_for_byte(self):
        doc = compare.compare_store(
            StoreView(_fixture_records()), baseline="bullet_prime"
        )
        assert compare.render_markdown(doc) == EXPECTED_LEAGUE_TABLE

    def test_paired_statistics_hand_computed(self):
        doc = compare.compare_store(
            StoreView(_fixture_records()), baseline="bullet_prime"
        )
        (cond,) = doc["conditions"]
        # Rows ranked best-first: splitstream (mean -2.0) ahead of
        # bittorrent (mean -0.5).
        assert [r["system"] for r in cond["rows"]] == [
            "splitstream",
            "bittorrent",
        ]
        bt = cond["rows"][1]["metrics"]["median"]
        assert bt["mean_delta"] == -0.5
        assert bt["median_delta"] == -1.0  # nearest-rank over 4 deltas
        assert bt["worst_delta"] == 1.0
        assert (bt["wins"], bt["ties"], bt["losses"]) == (3, 0, 1)
        assert bt["win_rate"] == 0.75
        # Sample stddev of [-1, 1, -1, -1] is 1.0; t(3) = 3.182.
        assert bt["ci_low"] == pytest.approx(-0.5 - 3.182 / 2)
        assert bt["ci_high"] == pytest.approx(-0.5 + 3.182 / 2)
        assert bt["pct_of_baseline"] == pytest.approx(-0.5 / 11.5)
        # The paired CI is exactly the stats helper over the deltas.
        assert (bt["ci_low"], bt["ci_high"]) == stats.paired_confidence_interval(
            [9.0, 13.0, 10.0, 12.0], [10.0, 12.0, 11.0, 13.0]
        )

    def test_default_baseline_is_alphabetical(self):
        doc = compare.compare_store(StoreView(_fixture_records()))
        assert doc["baseline"] == "bittorrent"
        assert doc["systems"] == ["bittorrent", "bullet_prime", "splitstream"]

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="no cells in the store"):
            compare.compare_store(StoreView(_fixture_records()), baseline="napster")

    def test_duplicate_cells_rejected(self):
        records = _fixture_records()
        with pytest.raises(ValueError, match="duplicate cell"):
            compare.compare_store(StoreView(records + records[:1]))

    def test_unfinished_pairs_excluded(self):
        records = _fixture_records()
        # Fail bittorrent's seed 1 run (its +1 delta, bullet_prime's
        # only win): the pair must leave every statistic.
        records[5]["summary"]["finished"] = False
        doc = compare.compare_store(StoreView(records), baseline="bullet_prime")
        (cond,) = doc["conditions"]
        bt_row = [r for r in cond["rows"] if r["system"] == "bittorrent"][0]
        assert (bt_row["pairs"], bt_row["n_pairs"]) == (4, 3)
        assert bt_row["seeds"] == [0, 2, 3]
        bt = bt_row["metrics"]["median"]
        assert bt["n"] == 3
        assert bt["mean_delta"] == -1.0
        assert bt["win_rate"] == 1.0

    def test_no_finished_pairs_renders_na(self):
        records = _fixture_records()
        for record in records:
            if record["cell"]["system"] == "bittorrent":
                record["summary"]["finished"] = False
        doc = compare.compare_store(StoreView(records), baseline="bullet_prime")
        (cond,) = doc["conditions"]
        bt_row = [r for r in cond["rows"] if r["system"] == "bittorrent"][0]
        assert bt_row["n_pairs"] == 0
        assert bt_row["metrics"]["median"] is None
        text = compare.render_markdown(doc)
        assert "| `bittorrent` | 0/4 | n/a | n/a | n/a | n/a | n/a | n/a |" in text
        # Rows with no data rank last.
        assert [r["system"] for r in cond["rows"]] == [
            "splitstream",
            "bittorrent",
        ]

    def test_json_rendering_is_deterministic(self):
        view = StoreView(_fixture_records())
        a = compare.render_json(compare.compare_store(view))
        b = compare.render_json(compare.compare_store(view))
        assert a == b
        assert json.loads(a)["baseline"] == "bittorrent"


class TestOrderAndWorkerInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.permutations(_fixture_records()))
    def test_report_bit_identical_for_shuffled_records(self, shuffled):
        reference = compare.compare_store(
            StoreView(_fixture_records()), baseline="bullet_prime"
        )
        shuffled_doc = compare.compare_store(
            StoreView(shuffled), baseline="bullet_prime"
        )
        assert shuffled_doc == reference
        assert compare.render_markdown(shuffled_doc) == EXPECTED_LEAGUE_TABLE
        assert compare.render_json(shuffled_doc) == compare.render_json(reference)

    def test_report_bit_identical_for_any_worker_count(self):
        spec = SweepSpec(
            systems=("bullet_prime", "bittorrent"),
            scenarios=("none",),
            nodes=(6,),
            blocks=(12,),
            seeds=(1, 2),
            max_time=600.0,
        )
        serial = compare.compare_store(run_sweep(spec, workers=1))
        parallel = compare.compare_store(run_sweep(spec, workers=2))
        assert serial == parallel
        assert compare.render_markdown(serial) == compare.render_markdown(parallel)


class TestWatchdogCells:
    """The unfinished-cell policy against the real golden watchdog cell."""

    @pytest.fixture(scope="class")
    def chaos_store(self):
        # bittorrent|chaos|1 is the recorded watchdog firing (finished
        # False); seed 3 finishes.  bullet_prime finishes both.
        spec = SweepSpec(
            systems=("bullet_prime", "bittorrent"),
            scenarios=("chaos",),
            nodes=(8,),
            blocks=(24,),
            seeds=(1, 3),
            max_time=900.0,
        )
        return run_sweep(spec, workers=1)

    def test_matches_recorded_golden_cells(self, chaos_store):
        golden = json.loads(GOLDEN_PATH.read_text())
        by_key = chaos_store.by_key()
        watchdog = by_key["bittorrent|chaos|mesh|n8|b24|s1"]
        assert watchdog["finished"] is False
        assert watchdog["perf"]["watchdog_fired"] == 1
        assert watchdog["median"] == golden["bittorrent|chaos|1"]["median"]

    def test_aggregates_exclude_the_watchdog_cell(self, chaos_store):
        golden = json.loads(GOLDEN_PATH.read_text())
        rows = {row["group"]: row for row in chaos_store.aggregates()}
        bt = rows["bittorrent|chaos|mesh|n8|b24"]
        assert (bt["n_seeds"], bt["n_finished"]) == (2, 1)
        assert bt["finished"] == 0.5
        # Only the finished seed-3 cell enters the statistics; the
        # censored watchdog metrics never leak into a mean.
        assert bt["median"]["n"] == 1
        assert bt["median"]["mean"] == golden["bittorrent|chaos|3"]["median"]
        bp = rows["bullet_prime|chaos|mesh|n8|b24"]
        assert (bp["n_seeds"], bp["n_finished"]) == (2, 2)

    def test_compare_pairs_only_the_finished_seed(self, chaos_store):
        doc = compare.compare_store(chaos_store, baseline="bullet_prime")
        (cond,) = doc["conditions"]
        (row,) = cond["rows"]
        assert row["system"] == "bittorrent"
        assert (row["pairs"], row["n_pairs"]) == (2, 1)
        assert row["seeds"] == [3]
        # Render must survive censored pairs without crashing.
        assert "chaos|mesh|n8|b24" in compare.render_markdown(doc)

    def test_all_pairs_censored_yields_na_not_crash(self):
        records = [
            _record("a", 0, None, None, None, finished=False),
            _record("a", 1, 5.0, 6.0, 7.0, finished=True),
            _record("b", 0, 4.0, 5.0, 6.0, finished=True),
            _record("b", 1, None, None, None, finished=False),
        ]
        doc = compare.compare_store(StoreView(records), baseline="a")
        (cond,) = doc["conditions"]
        (row,) = cond["rows"]
        # Disjoint finished seeds -> zero usable pairs, n/a everywhere.
        assert (row["pairs"], row["n_pairs"]) == (2, 0)
        assert row["metrics"]["median"] is None
        assert "n/a" in compare.render_markdown(doc)


def _ledger(**overrides):
    base = {
        "benchmark": "scenario_sweep",
        "nodes": 10,
        "blocks": 48,
        "cells": 14,
        "scenarios": ["chaos", "none"],
        "seeds": [2],
        "serial_seconds": 1.0,
        "parallel_seconds_4w": 0.5,
        "perf_totals": {
            "events_processed": 1000,
            "reallocations": 200,
            "fill_rounds": 400,
            "timers_recycled": 800,
        },
    }
    perf = overrides.pop("perf_totals", {})
    base.update(overrides)
    base["perf_totals"] = {**base["perf_totals"], **perf}
    return base


def _entries(*ledgers):
    return [
        {"source": f"entry{i}", "ledger": ledger} for i, ledger in enumerate(ledgers)
    ]


class TestTrendGate:
    def test_counter_regression_flagged_past_threshold(self):
        report = compare.trend_report(
            _entries(_ledger(), _ledger(perf_totals={"events_processed": 1250})),
            counter_threshold=0.20,
        )
        assert not report["ok"]
        assert report["steps"][0]["regressions"] == ["events_processed"]
        assert "events_processed" in report["regressions"][0]
        assert "REGRESSED" in compare.render_trend_markdown(report)

    def test_within_threshold_passes(self):
        report = compare.trend_report(
            _entries(_ledger(), _ledger(perf_totals={"events_processed": 1190})),
            counter_threshold=0.20,
        )
        assert report["ok"]
        assert report["regressions"] == []
        assert "No regressions." in compare.render_trend_markdown(report)

    def test_improvement_never_regresses(self):
        report = compare.trend_report(
            _entries(_ledger(), _ledger(perf_totals={"events_processed": 10}))
        )
        assert report["ok"]

    def test_wall_time_uses_its_own_generous_threshold(self):
        faster_counters_slower_wall = _ledger(serial_seconds=1.4)
        report = compare.trend_report(
            _entries(_ledger(), faster_counters_slower_wall),
            counter_threshold=0.10,
            wall_threshold=0.50,
        )
        assert report["ok"]  # +40% wall is under the 50% wall threshold
        report = compare.trend_report(
            _entries(_ledger(), _ledger(serial_seconds=1.6)),
            wall_threshold=0.50,
        )
        assert report["steps"][0]["regressions"] == ["serial_seconds"]

    def test_scale_mismatch_skips_not_lies(self):
        report = compare.trend_report(
            _entries(
                _ledger(),
                _ledger(nodes=50, perf_totals={"events_processed": 99999}),
            )
        )
        assert report["ok"]
        step = report["steps"][0]
        assert step["comparable"] is False
        assert "nodes" in step["skipped"]
        assert "skipped" in compare.render_trend_markdown(report)

    def test_consecutive_steps_each_checked(self):
        report = compare.trend_report(
            _entries(
                _ledger(),
                _ledger(perf_totals={"fill_rounds": 404}),
                _ledger(perf_totals={"fill_rounds": 800}),
            ),
            counter_threshold=0.20,
        )
        assert [s["regressions"] for s in report["steps"]] == [
            [],
            ["fill_rounds"],
        ]

    def test_requires_two_entries(self):
        with pytest.raises(ValueError, match="at least two"):
            compare.trend_report(_entries(_ledger()))

    def test_rejects_nonpositive_thresholds(self):
        entries = _entries(_ledger(), _ledger())
        with pytest.raises(ValueError, match="counter_threshold"):
            compare.trend_report(entries, counter_threshold=0.0)

    def test_load_ledger_entries_accepts_dict_and_list(self, tmp_path):
        single = tmp_path / "single.json"
        single.write_text(json.dumps(_ledger()))
        many = tmp_path / "many.json"
        many.write_text(json.dumps([_ledger(), _ledger()]))
        entries = compare.load_ledger_entries([str(single), str(many)])
        assert [e["source"] for e in entries] == [
            str(single),
            f"{many}[0]",
            f"{many}[1]",
        ]
        with pytest.raises(ValueError, match="perf_totals"):
            bad = tmp_path / "bad.json"
            bad.write_text(json.dumps({"whatever": 1}))
            compare.load_ledger_entries([str(bad)])


class TestStoreLoading:
    def test_compare_paths_concatenates_stores(self, tmp_path):
        records = _fixture_records()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records[:4])
        )
        b.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records[4:])
        )
        doc = compare.compare_paths([str(a), str(b)], baseline="bullet_prime")
        assert compare.render_markdown(doc) == EXPECTED_LEAGUE_TABLE

    def test_from_jsonl_rejects_non_store_files(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text('{"not": "a store"}\n')
        with pytest.raises(ValueError, match="not a sweep results store"):
            StoreView.from_jsonl(path)
        path.write_text("")
        with pytest.raises(ValueError, match="empty results store"):
            StoreView.from_jsonl(path)
        path.write_text("this is not json\n")
        with pytest.raises(ValueError, match="not a JSONL sweep store"):
            StoreView.from_jsonl(path)

    def test_compare_store_rejects_bare_paths(self):
        with pytest.raises(TypeError, match="StoreView"):
            compare.compare_store("results.jsonl")
