"""Tests for the control tree and RanSub."""

import collections

import pytest

from repro.common.rng import split_rng
from repro.overlay.ransub import NodeSummary, RanSubService, _merge_samples, _Sample
from repro.overlay.tree import ControlTree, build_random_tree


class TestRandomTree:
    def test_all_nodes_included(self):
        nodes = list(range(50))
        tree = build_random_tree(nodes, root=0, fanout=4, seed=1)
        assert sorted(tree.nodes) == nodes

    def test_fanout_respected(self):
        tree = build_random_tree(list(range(100)), root=0, fanout=3, seed=2)
        for node in tree.nodes:
            assert len(tree.children_of(node)) <= 3

    def test_root_has_no_parent(self):
        tree = build_random_tree(list(range(10)), root=5, fanout=2, seed=0)
        assert tree.root == 5
        assert tree.parent_of(5) is None

    def test_parent_child_consistency(self):
        tree = build_random_tree(list(range(30)), root=0, fanout=4, seed=3)
        for node in tree.nodes:
            if node == tree.root:
                continue
            assert node in tree.children_of(tree.parent_of(node))

    def test_deterministic_given_seed(self):
        a = build_random_tree(list(range(20)), root=0, seed=9)
        b = build_random_tree(list(range(20)), root=0, seed=9)
        assert a.parent == b.parent

    def test_different_seeds_differ(self):
        a = build_random_tree(list(range(20)), root=0, seed=1)
        b = build_random_tree(list(range(20)), root=0, seed=2)
        assert a.parent != b.parent

    def test_root_not_in_nodes_rejected(self):
        with pytest.raises(ValueError):
            build_random_tree([1, 2], root=0)

    def test_subtree_size(self):
        tree = build_random_tree(list(range(10)), root=0, fanout=2, seed=0)
        assert tree.subtree_size(tree.root) == 10

    def test_depth(self):
        tree = build_random_tree(list(range(64)), root=0, fanout=2, seed=1)
        assert tree.depth_of(tree.root) == 0
        max_depth = max(tree.depth_of(n) for n in tree.nodes)
        assert max_depth >= 4  # 64 nodes, fanout 2


class TestControlTreeValidation:
    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            ControlTree(0, {1: 0, 2: 1}, {0: [1], 1: [2], 2: [1]})

    def test_disconnected_detected(self):
        with pytest.raises(ValueError):
            ControlTree(0, {1: 0, 2: 9}, {0: [1], 9: [2]})

    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError):
            ControlTree(0, {0: 1, 1: 0}, {0: [1], 1: [0]})


class TestSampleMerge:
    def test_merge_respects_k(self):
        rng = split_rng(0, "t")
        samples = [
            _Sample([f"a{i}" for i in range(10)], 10),
            _Sample([f"b{i}" for i in range(10)], 10),
        ]
        merged = _merge_samples(samples, 5, rng)
        assert len(merged.entries) == 5
        assert merged.weight == 20

    def test_merge_empty(self):
        rng = split_rng(0, "t")
        assert _merge_samples([], 5, rng).weight == 0

    def test_merge_weighting_is_proportional(self):
        # A sample representing 90% of the population should dominate.
        rng = split_rng(1, "t")
        counts = collections.Counter()
        for trial in range(300):
            samples = [
                _Sample(["big"] * 9, 90),
                _Sample(["small"] * 9, 10),
            ]
            merged = _merge_samples(samples, 5, rng)
            counts.update(merged.entries)
        total = counts["big"] + counts["small"]
        assert counts["big"] / total > 0.75


class _StubProtocol:
    """Minimal protocol shim for driving RanSub in isolation."""

    def __init__(self, sim, node_id):
        self.sim = sim
        self.node_id = node_id
        self._handlers = {}

    def handler(self, kind, fn):
        self._handlers[kind] = fn

    def periodic(self, period, fn):
        return self.sim.schedule_periodic(period, fn)

    def schedule(self, delay, fn):
        return self.sim.schedule(delay, fn)


class _StubConn:
    """Loopback connection delivering into another protocol instance."""

    def __init__(self, sim, target_protocol, delay=0.001):
        self.sim = sim
        self.target = target_protocol
        self.delay = delay
        self.closed = False
        self.sent = []

    def send(self, message):
        self.sent.append(message)
        handler = self.target._handlers[message.kind]
        self.sim.schedule(self.delay, lambda: handler(self, message))
        return True


class TestRanSubSweep:
    def _build(self, num_nodes=7, fanout=2):
        from repro.sim.engine import Simulator

        sim = Simulator()
        tree = build_random_tree(list(range(num_nodes)), root=0, fanout=fanout, seed=1)
        protocols = {}
        services = {}
        received = collections.defaultdict(list)
        for node in tree.nodes:
            proto = _StubProtocol(sim, node)
            protocols[node] = proto
            services[node] = RanSubService(
                proto,
                tree,
                state_provider=lambda n=node: NodeSummary(n, blocks_held=n),
                on_subset=lambda subset, n=node: received[n].append(subset),
                epoch_period=5.0,
                subset_size=4,
                seed=3,
            )
        for node in tree.nodes:
            for child in tree.children_of(node):
                services[node].child_conns[child] = _StubConn(
                    sim, protocols[child]
                )
                services[child].parent_conn = _StubConn(
                    sim, protocols[node]
                )
        services[0].start_root()
        return sim, tree, services, received

    def test_every_node_receives_subsets(self):
        sim, tree, services, received = self._build()
        sim.run(until=30.0)
        for node in tree.nodes:
            if node == tree.root:
                continue
            assert received[node], f"node {node} never got a distribute"

    def test_subsets_carry_remote_summaries(self):
        sim, tree, services, received = self._build()
        sim.run(until=60.0)
        # After several epochs, a deep node must have seen summaries of
        # nodes outside its own subtree (the parent-sample propagation).
        leaves = [n for n in tree.nodes if tree.is_leaf(n)]
        leaf = leaves[-1]
        seen = {s.node_id for subset in received[leaf] for s in subset}
        outside = seen - {leaf}
        assert len(outside) >= 3

    def test_subset_size_bounded(self):
        sim, tree, services, received = self._build()
        sim.run(until=60.0)
        for subsets in received.values():
            for subset in subsets:
                assert len(subset) <= 4

    def test_epochs_advance(self):
        sim, tree, services, received = self._build()
        sim.run(until=30.0)
        assert services[0].epoch >= 4
